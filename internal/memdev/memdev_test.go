package memdev

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if DRAM.String() != "DRAM" || PCM.String() != "PCM" {
		t.Errorf("Kind strings wrong: %v %v", DRAM, PCM)
	}
	if Kind(9).String() != "Kind(9)" {
		t.Errorf("unknown kind string: %v", Kind(9))
	}
}

func TestCounters(t *testing.T) {
	d := New(Config{Kind: PCM, Bytes: 1 << 20})
	d.Write(0, 3)
	d.Read(64, 2)
	if d.WriteLines() != 3 {
		t.Errorf("WriteLines = %d, want 3", d.WriteLines())
	}
	if d.ReadLines() != 2 {
		t.Errorf("ReadLines = %d, want 2", d.ReadLines())
	}
	if d.WriteBytes() != 3*LineSize {
		t.Errorf("WriteBytes = %d, want %d", d.WriteBytes(), 3*LineSize)
	}
	if d.ReadBytes() != 2*LineSize {
		t.Errorf("ReadBytes = %d, want %d", d.ReadBytes(), 2*LineSize)
	}
	d.ResetCounters()
	if d.WriteLines() != 0 || d.ReadLines() != 0 {
		t.Error("ResetCounters did not zero counters")
	}
}

func TestWearTracking(t *testing.T) {
	d := New(Config{Kind: PCM, Bytes: 64 * 4096, TrackWear: true})
	// 64 lines = one full 4KB page.
	d.Write(0, 64)
	// One line in the second page.
	d.Write(4096, 1)
	w := d.WearSummary()
	if !w.Tracked {
		t.Fatal("wear should be tracked")
	}
	if w.Pages != 2 {
		t.Errorf("worn pages = %d, want 2", w.Pages)
	}
	if w.MaxPage != 64 {
		t.Errorf("max page wear = %d, want 64", w.MaxPage)
	}
	if w.AllPages != 64 {
		t.Errorf("AllPages = %d, want 64", w.AllPages)
	}
}

func TestWearSurvivesReset(t *testing.T) {
	d := New(Config{Kind: PCM, Bytes: 16 * 4096, TrackWear: true})
	d.Write(0, 1)
	d.ResetCounters()
	if got := d.WearSummary().Pages; got != 1 {
		t.Errorf("wear pages after reset = %d, want 1", got)
	}
}

func TestSnapshot(t *testing.T) {
	d := New(Config{Kind: DRAM, Bytes: 1 << 20})
	d.Write(0, 5)
	d.Read(0, 7)
	s := d.Snapshot()
	if s.WriteLines != 5 || s.ReadLines != 7 {
		t.Errorf("snapshot = %+v", s)
	}
	// Snapshot is a copy: further traffic must not alter it.
	d.Write(0, 1)
	if s.WriteLines != 5 {
		t.Error("snapshot mutated by later writes")
	}
}

// Property: write counters are additive over any sequence of writes.
func TestWriteAdditivityProperty(t *testing.T) {
	f := func(ns []uint8) bool {
		d := New(Config{Kind: PCM, Bytes: 1 << 20})
		var want uint64
		for _, n := range ns {
			d.Write(0, uint64(n))
			want += uint64(n)
		}
		return d.WriteLines() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
