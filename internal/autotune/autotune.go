// Package autotune searches a placement-policy knob grid against one
// recorded trace, entirely offline.
//
// The paper fixes its placement parameters per workload by hand; the
// write-threshold knobs (HotWriteLines, ColdWriteLines,
// DRAMBudgetPages) and the wear factor trade PCM write placement
// against migration stalls, and the right settings are workload
// dependent. Searching that space live costs one full emulator run per
// grid point. This package prices an entire grid from a single
// recorded trace instead: every point replays the same recorded view
// stream through trace.ReplayWith with its own knob configuration, so
// a 3x3x3 grid costs one emulation plus 27 millisecond-scale replays —
// the parameter-sensitivity workflow METICULOUS-style emulators treat
// as first class (arXiv:2309.06565), applied to the NUMA emulation
// methodology of arXiv:1808.00064.
//
// Each evaluated Point carries the replay's cost model: estimated
// migration stalls, pages migrated, the PCM write placement under the
// point's decisions, and the reduction against the no-migration
// baseline. Points are scored on two objectives — minimize
// StallCycles, minimize PCMWriteLines — and the Pareto-optimal
// frontier (dominated points excluded, exact ties kept) is reported in
// a stable order together with a recommended point: the frontier knee,
// the point closest to the per-grid ideal in normalized objective
// space.
//
// Replay estimates are exact where the replayed decisions match the
// recorded stream and knob-priced approximations where they diverge
// (recorded views reflect the recorded policy's placement history); a
// tuned point is therefore validated with a live emulator run, which
// hybridmem.Sweep.Knobs and paperfigs' autotune step automate.
// EstimateTolerance is the documented accuracy contract for that
// validation.
package autotune

import (
	"context"
	"fmt"
	"io"
	"sort"

	"repro/internal/policy"
	"repro/internal/trace"
)

// EstimateTolerance is the relative error the replay cost model is
// allowed against a live run of the same knob point: |predicted -
// live| / max(live, 1) for stall cycles. Matching-decision replays are
// exact (tolerance 0 would hold); divergent-decision estimates carry
// the recorded placement history's bias, which this bound caps for the
// validation suite and the CI smoke step.
const EstimateTolerance = 0.25

// Grid enumerates a knob space for one policy: the cartesian product
// of the listed values per knob. A nil dimension holds that knob at
// its registry default, so a Grid zero value (plus a policy kind) is a
// single-point grid of the defaults.
type Grid struct {
	// Policy is the policy every point replays (typically the
	// migrating kinds: write-threshold or wear-level).
	Policy policy.Kind
	// HotWriteLines, ColdWriteLines, and DRAMBudgetPages are the
	// write-threshold knobs; WearFactors is wear-level's rotation
	// threshold. Values must be valid for policy.Config (hot > 0,
	// budget > 0, wear factor > 0); Validate rejects values the
	// config layer would silently replace with defaults.
	HotWriteLines   []uint64
	ColdWriteLines  []uint64
	DRAMBudgetPages []uint64
	WearFactors     []float64
}

// MaxGridPoints bounds one search's cartesian product. Each point
// costs a full trace replay, so an unbounded grid would let one
// policytune invocation — or one POST /v1/autotune request against a
// shared hybridserved — monopolize the host; 4096 is far above any
// sensible sweep (a 3x3x3 study is 27 points).
const MaxGridPoints = 4096

// Validate rejects grids whose points would not round-trip through
// policy.Config — zero hot thresholds or budgets and non-positive
// wear factors are indistinguishable from "use the default" at the
// config layer, so a grid naming them would silently evaluate a
// different point than it reports — plus grids that could not mean
// what they say: duplicate values (which would duplicate points and
// make the recommendation ambiguous), dimensions varied for a policy
// that never reads them (every point would price identically), and
// cartesian products past MaxGridPoints.
func (g Grid) Validate() error {
	if g.Policy < policy.Static || g.Policy >= policy.NumKinds {
		return fmt.Errorf("autotune: unknown policy Kind(%d)", int(g.Policy))
	}
	for _, v := range g.HotWriteLines {
		if v == 0 {
			return fmt.Errorf("autotune: hot write threshold must be > 0")
		}
	}
	for _, v := range g.DRAMBudgetPages {
		if v == 0 {
			return fmt.Errorf("autotune: DRAM budget must be > 0 pages")
		}
	}
	for _, v := range g.WearFactors {
		if v <= 0 {
			return fmt.Errorf("autotune: wear factor must be > 0, got %g", v)
		}
	}
	for dim, n := range map[string]int{
		"hot":    uniqueUints(g.HotWriteLines),
		"cold":   uniqueUints(g.ColdWriteLines),
		"budget": uniqueUints(g.DRAMBudgetPages),
		"wear":   uniqueFloats(g.WearFactors),
	} {
		if n < 0 {
			return fmt.Errorf("autotune: duplicate %s grid values (each point must be a distinct knob tuple)", dim)
		}
	}
	// A dimension the policy never reads prices every point
	// identically; varying it is a mistake worth naming, not a
	// degenerate search worth running.
	wt := g.Policy == policy.WriteThreshold
	if !wt && (len(g.HotWriteLines) > 1 || len(g.ColdWriteLines) > 1 || len(g.DRAMBudgetPages) > 1) {
		return fmt.Errorf("autotune: policy %s ignores the write-threshold knobs; drop the hot/cold/budget grid dimensions", g.Policy)
	}
	if g.Policy != policy.WearLevel && len(g.WearFactors) > 1 {
		return fmt.Errorf("autotune: policy %s ignores the wear factor; drop the wear grid dimension", g.Policy)
	}
	points := 1
	for _, n := range []int{len(g.HotWriteLines), len(g.ColdWriteLines),
		len(g.DRAMBudgetPages), len(g.WearFactors)} {
		points *= dimSize(n)
		if points > MaxGridPoints {
			// Bail per dimension so the product cannot overflow.
			return fmt.Errorf("autotune: grid exceeds %d points", MaxGridPoints)
		}
	}
	return nil
}

// dimSize is a dimension's contribution to the point count (an empty
// dimension contributes its single default value).
func dimSize(n int) int {
	if n == 0 {
		return 1
	}
	return n
}

// uniqueUints returns the value count, or -1 on a duplicate.
func uniqueUints(vs []uint64) int {
	seen := make(map[uint64]bool, len(vs))
	for _, v := range vs {
		if seen[v] {
			return -1
		}
		seen[v] = true
	}
	return len(vs)
}

// uniqueFloats returns the value count, or -1 on a duplicate.
func uniqueFloats(vs []float64) int {
	seen := make(map[float64]bool, len(vs))
	for _, v := range vs {
		if seen[v] {
			return -1
		}
		seen[v] = true
	}
	return len(vs)
}

// Points expands the grid into knob configurations in a fixed order:
// hot-major, then cold, budget, wear factor — the order Run evaluates
// and Report.Points preserves. Empty dimensions contribute the
// registry default value, so every returned Config is fully resolved.
func (g Grid) Points() []policy.Config {
	hot := g.HotWriteLines
	if len(hot) == 0 {
		hot = []uint64{policy.DefaultHotWriteLines}
	}
	cold := g.ColdWriteLines
	if len(cold) == 0 {
		cold = []uint64{policy.DefaultColdWriteLines}
	}
	budget := g.DRAMBudgetPages
	if len(budget) == 0 {
		budget = []uint64{policy.DefaultDRAMBudgetPages}
	}
	wear := g.WearFactors
	if len(wear) == 0 {
		wear = []float64{policy.DefaultWearFactor}
	}
	pts := make([]policy.Config, 0, len(hot)*len(cold)*len(budget)*len(wear))
	for _, h := range hot {
		for _, c := range cold {
			for _, b := range budget {
				for _, w := range wear {
					pts = append(pts, policy.Config{
						Kind:            g.Policy,
						HotWriteLines:   h,
						ColdWriteLines:  c,
						DRAMBudgetPages: b,
						WearFactor:      w,
					}.WithDefaults())
				}
			}
		}
	}
	return pts
}

// Point is one evaluated knob configuration: the knobs, the replay's
// cost model for them, and its frontier standing. The JSON field names
// are the policytune ndjson schema and the /v1/autotune wire format.
type Point struct {
	// The knob configuration, spelled like the trace header.
	Policy          string  `json:"policy"`
	HotWriteLines   uint64  `json:"hotWriteLines"`
	ColdWriteLines  uint64  `json:"coldWriteLines"`
	DRAMBudgetPages uint64  `json:"dramBudgetPages"`
	WearFactor      float64 `json:"wearFactor"`

	// The replay outcome under these knobs.
	Quanta            uint64  `json:"quanta"`
	Actions           uint64  `json:"actions"`
	PagesMigrated     uint64  `json:"pagesMigrated"`
	StallCycles       float64 `json:"stallCycles"`
	PCMWriteLines     uint64  `json:"pcmWriteLines"`
	PCMWriteReduction float64 `json:"pcmWriteReduction"`
	// MatchesRecorded marks the point whose decisions reproduced the
	// recorded stream: its costs are the live run's, not estimates.
	MatchesRecorded bool `json:"matchesRecorded"`

	// Pareto marks frontier membership; Recommended marks the one
	// frontier point Report.Recommended selects.
	Pareto      bool `json:"pareto"`
	Recommended bool `json:"recommended,omitempty"`
}

// Config reconstructs the point's resolved knob configuration.
func (p Point) Config() policy.Config {
	cfg := policy.Config{
		HotWriteLines:   p.HotWriteLines,
		ColdWriteLines:  p.ColdWriteLines,
		DRAMBudgetPages: p.DRAMBudgetPages,
		WearFactor:      p.WearFactor,
	}
	for k := policy.Static; k < policy.NumKinds; k++ {
		if k.String() == p.Policy {
			cfg.Kind = k
			break
		}
	}
	return cfg.WithDefaults()
}

// dominates reports strict Pareto dominance of a over b on the two
// minimization objectives: no worse on both, strictly better on one.
// Exact ties on both objectives dominate in neither direction, so tied
// points survive to the frontier together.
func dominates(a, b Point) bool {
	if a.StallCycles > b.StallCycles || a.PCMWriteLines > b.PCMWriteLines {
		return false
	}
	return a.StallCycles < b.StallCycles || a.PCMWriteLines < b.PCMWriteLines
}

// Frontier returns the Pareto-optimal subset of points on (minimize
// StallCycles, minimize PCMWriteLines), sorted by stall cycles
// ascending with PCM writes and then the knob tuple as tiebreaks — a
// total, deterministic order independent of the input order.
func Frontier(points []Point) []Point {
	var front []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			p.Pareto = true
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool { return pointLess(front[i], front[j]) })
	return front
}

// pointLess is the frontier's total order.
func pointLess(a, b Point) bool {
	if a.StallCycles != b.StallCycles {
		return a.StallCycles < b.StallCycles
	}
	if a.PCMWriteLines != b.PCMWriteLines {
		return a.PCMWriteLines < b.PCMWriteLines
	}
	if a.HotWriteLines != b.HotWriteLines {
		return a.HotWriteLines < b.HotWriteLines
	}
	if a.ColdWriteLines != b.ColdWriteLines {
		return a.ColdWriteLines < b.ColdWriteLines
	}
	if a.DRAMBudgetPages != b.DRAMBudgetPages {
		return a.DRAMBudgetPages < b.DRAMBudgetPages
	}
	return a.WearFactor < b.WearFactor
}

// recommend picks the frontier knee: the frontier point closest to the
// ideal (min stall, min PCM writes over all evaluated points) in
// objective space normalized by each objective's observed range. A
// degenerate range (every point equal on an objective) contributes
// zero, and exact distance ties resolve by the frontier's stable
// order, so the recommendation is deterministic.
func recommend(all, front []Point) (Point, bool) {
	if len(front) == 0 {
		return Point{}, false
	}
	minStall, maxStall := all[0].StallCycles, all[0].StallCycles
	minPCM, maxPCM := all[0].PCMWriteLines, all[0].PCMWriteLines
	for _, p := range all[1:] {
		minStall = min(minStall, p.StallCycles)
		maxStall = max(maxStall, p.StallCycles)
		minPCM = min(minPCM, p.PCMWriteLines)
		maxPCM = max(maxPCM, p.PCMWriteLines)
	}
	norm := func(v, lo, hi float64) float64 {
		if hi <= lo {
			return 0
		}
		return (v - lo) / (hi - lo)
	}
	best, bestDist := front[0], 0.0
	for i, p := range front {
		ds := norm(p.StallCycles, minStall, maxStall)
		dp := norm(float64(p.PCMWriteLines), float64(minPCM), float64(maxPCM))
		dist := ds*ds + dp*dp
		if i == 0 || dist < bestDist {
			best, bestDist = p, dist
		}
	}
	return best, true
}

// Report is one grid search over one trace: every evaluated point in
// grid order, the Pareto frontier in its stable order, and the
// recommended knob set. Frontier membership is flagged on the points
// themselves too, so a table can render one list.
type Report struct {
	// Header identifies the recorded run the grid was priced against.
	Header trace.Header `json:"header"`
	// Points holds every grid point in Grid.Points order.
	Points []Point `json:"points"`
	// Frontier is the Pareto-optimal subset (see Frontier).
	Frontier []Point `json:"frontier"`
	// Recommended is the frontier knee (meaningless when Frontier is
	// empty, which only happens for an empty Points).
	Recommended Point `json:"recommended"`
}

// Run replays every point of the grid against the trace in src and
// assembles the report. The trace is decoded once (header + quanta)
// and the in-memory records are replayed per point, so grid size
// multiplies only the replay work, not the JSON parsing; ctx cancels
// between points.
//
// On a corrupt trace every point prices the same valid prefix — the
// grid stays internally comparable — and Run returns the prefix report
// together with the trace.ErrCorrupt that truncated it. A
// version-skewed or headless trace fails before any point runs.
func Run(ctx context.Context, src io.Reader, g Grid) (Report, error) {
	var rep Report
	if err := g.Validate(); err != nil {
		return rep, err
	}
	hdr, quanta, truncated := trace.DecodeAll(src)
	if truncated != nil && len(quanta) == 0 && hdr == (trace.Header{}) {
		// No header at all (corrupt line 1 or version skew): nothing
		// to price, fail the search up front.
		return rep, truncated
	}
	rep.Header = hdr
	pol, err := policy.NewPolicy(g.Policy.String())
	if err != nil {
		return rep, err
	}

	for _, cfg := range g.Points() {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		st, err := trace.ReplayDecoded(hdr, quanta, pol, cfg)
		if err != nil {
			return rep, err
		}
		rep.Points = append(rep.Points, Point{
			Policy:            cfg.Kind.String(),
			HotWriteLines:     cfg.HotWriteLines,
			ColdWriteLines:    cfg.ColdWriteLines,
			DRAMBudgetPages:   cfg.DRAMBudgetPages,
			WearFactor:        cfg.WearFactor,
			Quanta:            st.Quanta,
			Actions:           st.Actions,
			PagesMigrated:     st.PagesMigrated,
			StallCycles:       st.StallCycles,
			PCMWriteLines:     st.PCMWriteLines,
			PCMWriteReduction: st.PCMWriteReduction(),
			MatchesRecorded:   st.MatchesRecorded && st.RecordedPolicy == pol.Name(),
		})
	}

	rep.Frontier = Frontier(rep.Points)
	rec, recommended := recommend(rep.Points, rep.Frontier)
	if recommended {
		rec.Recommended = true
		rep.Recommended = rec
		for i := range rep.Frontier {
			if samePoint(rep.Frontier[i], rec) {
				rep.Frontier[i].Recommended = true
			}
		}
	}
	// Flag frontier membership (and the recommendation, always a
	// frontier member) on the full point list in one pass.
	for i := range rep.Points {
		for _, f := range rep.Frontier {
			if samePoint(rep.Points[i], f) {
				rep.Points[i].Pareto = true
				rep.Points[i].Recommended = recommended && samePoint(rep.Points[i], rec)
			}
		}
	}
	return rep, truncated
}

// samePoint matches points by their knob tuple — unique per grid,
// because Validate rejects duplicate dimension values.
func samePoint(a, b Point) bool {
	return a.Policy == b.Policy &&
		a.HotWriteLines == b.HotWriteLines &&
		a.ColdWriteLines == b.ColdWriteLines &&
		a.DRAMBudgetPages == b.DRAMBudgetPages &&
		a.WearFactor == b.WearFactor
}
