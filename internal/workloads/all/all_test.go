package all

import (
	"testing"

	"repro/internal/workloads"
)

func TestFifteenApps(t *testing.T) {
	names := Names()
	if len(names) != 15 {
		t.Fatalf("registry has %d apps, want the paper's 15", len(names))
	}
	apps := Apps()
	if len(apps) != 15 {
		t.Fatalf("Apps() = %d", len(apps))
	}
	for i, a := range apps {
		if a == nil {
			t.Fatalf("app %q is nil", names[i])
		}
		if a.Name() != names[i] {
			t.Errorf("apps[%d] = %s, want %s", i, a.Name(), names[i])
		}
	}
}

func TestBySuite(t *testing.T) {
	if got := len(BySuite(workloads.DaCapo)); got != 11 {
		t.Errorf("DaCapo = %d, want 11", got)
	}
	if got := len(BySuite(workloads.Pjbb)); got != 1 {
		t.Errorf("Pjbb = %d, want 1", got)
	}
	if got := len(BySuite(workloads.GraphChi)); got != 3 {
		t.Errorf("GraphChi = %d, want 3", got)
	}
}

func TestUnknown(t *testing.T) {
	if New("nonsense") != nil {
		t.Error("unknown app should be nil")
	}
}

func TestSuiteNurseries(t *testing.T) {
	// The paper: 4 MB nursery for DaCapo/Pjbb, 32 MB for GraphChi.
	for _, a := range Apps() {
		want := 4
		if a.Suite() == workloads.GraphChi {
			want = 32
		}
		if a.NurseryMB() != want {
			t.Errorf("%s nursery = %d, want %d", a.Name(), a.NurseryMB(), want)
		}
	}
}
