package heap

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/objmodel"
)

// ChunkState is one free-list entry, carrying the meta-information the
// paper lists in Fig 1: size (always 4 MB), status, and owner space.
type ChunkState struct {
	Addr  uint64
	Free  bool
	Owner objmodel.SpaceID
}

// FreeList manages one portion of heap virtual memory as 4 MB chunks.
// It maps new chunks on demand (mmap followed by mbind to the list's
// socket, as the paper's modified allocator does) and recycles released
// chunks without unmapping them — the core efficiency argument for the
// two-list design.
type FreeList struct {
	Name   string
	base   uint64
	limit  uint64
	node   int
	mem    Memory
	chunks []ChunkState
	mapped uint64 // bytes of the range mapped so far
	// UnmapOnRelease models the paper's rejected alternative: a
	// monolithic heap must unmap freed chunks so a DRAM space never
	// inherits PCM-mapped pages, paying munmap/mmap/fault costs on
	// every recycle. The dual-free-list design leaves this false.
	UnmapOnRelease bool
	// unmappedVAs are chunk addresses returned to the OS under the
	// ablation, available for remapping.
	unmappedVAs []uint64
	// Acquires/Recycles/Maps count allocation events for the
	// free-list ablation study.
	Acquires uint64
	Recycles uint64
	Maps     uint64
}

// NewFreeList returns a free list over [base, limit) binding new
// chunks to the given NUMA node.
func NewFreeList(name string, base, limit uint64, node int, mem Memory) *FreeList {
	if base%ChunkBytes != 0 || limit%ChunkBytes != 0 || base >= limit {
		panic(fmt.Sprintf("heap: free list %s range [%#x,%#x) not chunk-aligned", name, base, limit))
	}
	return &FreeList{Name: name, base: base, limit: limit, node: node, mem: mem}
}

// Node returns the list's NUMA binding.
func (fl *FreeList) Node() int { return fl.node }

// Acquire hands a free chunk to the owner space, preferring recycled
// chunks (already mapped, possibly on behalf of a different space) and
// mapping a fresh chunk only when none is free.
func (fl *FreeList) Acquire(owner objmodel.SpaceID) (uint64, error) {
	fl.Acquires++
	for i := range fl.chunks {
		if fl.chunks[i].Free {
			fl.chunks[i].Free = false
			fl.chunks[i].Owner = owner
			fl.Recycles++
			return fl.chunks[i].Addr, nil
		}
	}
	var addr uint64
	if n := len(fl.unmappedVAs); n > 0 {
		addr = fl.unmappedVAs[n-1]
		fl.unmappedVAs = fl.unmappedVAs[:n-1]
		fl.mapped -= ChunkBytes // will be re-added below
	} else {
		addr = fl.base + fl.mapped
		if addr+ChunkBytes > fl.limit {
			return 0, fmt.Errorf("heap: free list %s exhausted (%d MB mapped)", fl.Name, fl.mapped>>20)
		}
	}
	// The paper's allocator: mmap to reserve, then mbind to place the
	// range on the DRAM or PCM socket.
	if err := fl.mem.MMap(addr, ChunkBytes, kernel.NodeFirstTouch); err != nil {
		return 0, err
	}
	if err := fl.mem.MBind(addr, ChunkBytes, fl.node); err != nil {
		return 0, err
	}
	fl.mapped += ChunkBytes
	fl.Maps++
	fl.chunks = append(fl.chunks, ChunkState{Addr: addr, Free: false, Owner: owner})
	return addr, nil
}

// Release marks a chunk free for recycling. In the paper's design the
// chunk stays mapped in the OS page tables and a later Acquire may
// hand it to any space; under the monolithic-heap ablation the chunk
// is unmapped instead and must be remapped (and re-zeroed by the
// kernel) on reuse.
func (fl *FreeList) Release(addr uint64) {
	for i := range fl.chunks {
		if fl.chunks[i].Addr == addr {
			if fl.UnmapOnRelease {
				if err := fl.mem.MUnmap(addr, ChunkBytes); err != nil {
					panic(err)
				}
				fl.chunks = append(fl.chunks[:i], fl.chunks[i+1:]...)
				fl.unmappedVAs = append(fl.unmappedVAs, addr)
				return
			}
			fl.chunks[i].Free = true
			fl.chunks[i].Owner = objmodel.SpaceNone
			return
		}
	}
	panic(fmt.Sprintf("heap: release of unknown chunk %#x on list %s", addr, fl.Name))
}

// MappedBytes reports how much of the range has been mapped.
func (fl *FreeList) MappedBytes() uint64 { return fl.mapped }

// InUseChunks reports the number of chunks currently owned by spaces.
func (fl *FreeList) InUseChunks() int {
	n := 0
	for _, c := range fl.chunks {
		if !c.Free {
			n++
		}
	}
	return n
}

// Chunks returns a copy of the chunk table for inspection.
func (fl *FreeList) Chunks() []ChunkState {
	return append([]ChunkState(nil), fl.chunks...)
}
