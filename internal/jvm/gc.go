package jvm

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/objmodel"
)

// budget is the current full-GC trigger (see dynBudget).
func (r *Runtime) budget() uint64 {
	if r.dynBudget > r.Plan.HeapBytes {
		return r.dynBudget
	}
	return r.Plan.HeapBytes
}

// maybeFullGC triggers a full-heap collection when the mature budget
// is exhausted. Frequent large-object allocation in PCM fills the heap
// quickly and drives this trigger — the effect behind the paper's
// KG-B and KG-W−LOO analyses.
func (r *Runtime) maybeFullGC() {
	if r.matureUsed() > r.budget() {
		r.collectFull()
	}
}

// gcEnter flips the runtime into collector mode: the world is stopped
// and the paper's two GC threads do the work.
func (r *Runtime) gcEnter() func() {
	r.gcActive = true
	old := r.Proc.Th.Parallelism
	r.Proc.Th.Parallelism = float64(r.Plan.GCThreads)
	return func() {
		r.Proc.Th.Parallelism = old
		r.gcActive = false
	}
}

// considerFn pushes unmarked collection candidates onto the trace.
type tracer struct {
	r       *Runtime
	stack   []objmodel.ObjID
	reached []objmodel.ObjID
	accept  func(*objmodel.Object) bool
}

func (t *tracer) consider(id objmodel.ObjID) {
	if id == objmodel.Nil {
		return
	}
	o := t.r.Table.Get(id)
	if !t.accept(o) || o.Marked(t.r.epoch) {
		return
	}
	o.SetMark(t.r.epoch)
	t.stack = append(t.stack, id)
	t.reached = append(t.reached, id)
}

// drain scans queued objects (charging the header+refslot reads) and
// follows their references. Slots whose targets satisfy moves (i.e.
// will be copied by this collection) are charged a forwarding write,
// as the copying collector rewrites them.
func (t *tracer) drain(moves func(*objmodel.Object) bool) {
	r := t.r
	for len(t.stack) > 0 {
		id := t.stack[len(t.stack)-1]
		t.stack = t.stack[:len(t.stack)-1]
		o := r.Table.Get(id)
		n := o.NumRefs()
		r.Proc.Access(o.Addr, objmodel.HeaderBytes+n*objmodel.RefBytes, false)
		for i := 0; i < n; i++ {
			ref := o.Ref(i)
			if ref == objmodel.Nil {
				continue
			}
			if moves != nil && moves(r.Table.Get(ref)) {
				r.Proc.Access(o.RefSlotAddr(i), objmodel.RefBytes, true)
			}
			t.consider(ref)
		}
	}
}

// isYoung reports whether an object lives in a to-be-evacuated space.
func isYoung(o *objmodel.Object) bool {
	return o.Space == objmodel.SpaceNursery || o.Space == objmodel.SpaceObserver
}

// scanRoots charges the stack/global scan and feeds root targets.
func (r *Runtime) scanRoots(t *tracer) {
	r.Proc.Compute(4 * len(r.roots))
	for _, id := range r.roots {
		t.consider(id)
	}
}

// scanRemset reads each remembered slot and feeds its current target.
func (r *Runtime) scanRemset(t *tracer, set []remEntry) {
	for _, e := range set {
		so := r.Table.Get(e.src)
		if so.Addr == 0 {
			continue // source died in an earlier collection
		}
		r.Proc.Access(so.RefSlotAddr(int(e.slot)), objmodel.RefBytes, false)
		if ref := so.Ref(int(e.slot)); ref != objmodel.Nil {
			t.consider(ref)
		}
	}
}

// collectYoung runs a nursery collection, evacuating the observer
// space too when it cannot absorb another nursery of survivors.
func (r *Runtime) collectYoung() {
	if r.gcActive {
		return
	}
	defer r.gcEnter()()

	evac := r.Plan.UseObserver &&
		r.observer.Capacity()-r.observer.Used() < r.nursery.Used()
	r.Stats.MinorGCs++
	if evac {
		r.Stats.ObserverGCs++
	}
	r.epoch++

	t := &tracer{r: r, accept: func(o *objmodel.Object) bool {
		if o.Space == objmodel.SpaceNursery {
			return true
		}
		return evac && o.Space == objmodel.SpaceObserver
	}}
	r.scanRoots(t)
	r.scanRemset(t, r.remNursery)
	if evac {
		r.scanRemset(t, r.remObserver)
	}
	t.drain(t.accept)

	var nurseryReached, observerReached []objmodel.ObjID
	for _, id := range t.reached {
		if r.Table.Get(id).Space == objmodel.SpaceNursery {
			nurseryReached = append(nurseryReached, id)
		} else {
			observerReached = append(observerReached, id)
		}
	}

	// Evacuate observer residents first (dispatch by write history),
	// freeing the observer for this round's nursery survivors.
	var promoted []objmodel.ObjID
	if evac {
		for _, id := range observerReached {
			r.dispatchObserver(id)
			promoted = append(promoted, id)
		}
		for _, id := range r.observerObjs {
			if o := r.Table.Get(id); o.Addr != 0 && o.Space == objmodel.SpaceObserver {
				r.Table.Free(id)
			}
		}
		r.observerObjs = r.observerObjs[:0]
		r.observer.Reset()
	}

	for _, id := range nurseryReached {
		if r.promoteNursery(id) {
			promoted = append(promoted, id)
		}
	}
	for _, id := range r.nurseryObjs {
		if o := r.Table.Get(id); o.Addr != 0 && o.Space == objmodel.SpaceNursery {
			r.Table.Free(id)
		}
	}
	r.nurseryObjs = r.nurseryObjs[:0]
	r.nursery.Reset()

	r.fixupRemsets(evac, promoted)
	// The collection's safepoint quantum: the placement-policy engine
	// migrates page groups while the world is still stopped.
	if r.Safepoint != nil {
		r.Safepoint()
	}
}

// promoteNursery copies one surviving nursery object to its plan
// target: the observer under KG-W, the PCM mature space otherwise;
// large objects go to a large-object space by write history. It
// reports whether the object left the young generation (so the caller
// can re-remember its young references).
func (r *Runtime) promoteNursery(id objmodel.ObjID) bool {
	o := r.Table.Get(id)
	size := uint64(o.Size)
	r.Stats.SurvivorBytes += size

	switch {
	case o.Flags&objmodel.FlagLarge != 0:
		if r.Plan.Monitor && o.Flags&objmodel.FlagWritten != 0 && r.largeDRAM != nil {
			r.copyChunked(o, r.largeDRAM, objmodel.SpaceLargeDRAM)
		} else {
			r.copyChunked(o, r.largePCM, objmodel.SpaceLargePCM)
		}
		r.matureObjs = append(r.matureObjs, id)
		return true
	case r.Plan.UseObserver:
		addr, ok := r.observer.Alloc(size)
		if !ok {
			// The observer sizing invariant guarantees room; running
			// out is a bug worth failing loudly on.
			panic(fmt.Errorf("jvm: observer overflow copying %d bytes", size))
		}
		r.copyTo(o, addr, objmodel.SpaceObserver)
		o.Flags &^= objmodel.FlagWritten // observation starts now
		r.observerObjs = append(r.observerObjs, id)
		return false
	default:
		r.copyChunked(o, r.maturePCM, objmodel.SpaceMaturePCM)
		r.Stats.ToMaturePCMBytes += size
		r.matureObjs = append(r.matureObjs, id)
		return true
	}
}

// dispatchObserver copies one surviving observer object to the DRAM
// mature space if it was written while observed, else to PCM — the
// core of write-rationing: past writes predict future writes.
func (r *Runtime) dispatchObserver(id objmodel.ObjID) {
	o := r.Table.Get(id)
	size := uint64(o.Size)
	r.Stats.ObserverOutBytes += size
	if o.Flags&objmodel.FlagWritten != 0 && r.matureDRAM != nil {
		r.copyChunked(o, r.matureDRAM, objmodel.SpaceMatureDRAM)
		r.Stats.ToMatureDRAMBytes += size
	} else {
		r.copyChunked(o, r.maturePCM, objmodel.SpaceMaturePCM)
		r.Stats.ToMaturePCMBytes += size
	}
	r.matureObjs = append(r.matureObjs, id)
}

// copyChunked copies an object into a chunked space.
func (r *Runtime) copyChunked(o *objmodel.Object, dst *heap.ChunkedSpace, space objmodel.SpaceID) {
	addr, err := dst.Alloc(uint64(o.Size))
	if err != nil {
		panic(err)
	}
	r.copyTo(o, addr, space)
}

// copyTo charges the copy (read source, install forwarding pointer,
// write destination) and retargets the record.
func (r *Runtime) copyTo(o *objmodel.Object, dst uint64, space objmodel.SpaceID) {
	lines := int((uint64(o.Size) + 63) / 64)
	r.Proc.AccessLines(o.Addr, lines, false)
	r.Proc.Access(o.Addr, objmodel.HeaderBytes, true) // forwarding word
	r.Proc.AccessLines(dst, lines, true)
	o.Addr = dst
	o.Space = space
}

// fixupRemsets rebuilds the remembered sets after a young collection:
// nursery entries whose targets moved into the observer become
// observer entries, and objects promoted to the mature spaces re-
// remember any references they retain into the (young) observer.
func (r *Runtime) fixupRemsets(evac bool, promoted []objmodel.ObjID) {
	oldNursery := r.remNursery
	r.remNursery = r.remNursery[:0]
	if !r.Plan.UseObserver {
		return
	}
	if evac {
		r.remObserver = r.remObserver[:0]
	}
	for _, e := range oldNursery {
		so := r.Table.Get(e.src)
		if so.Addr == 0 || r.Layout.InYoung(so.Addr) {
			continue
		}
		if ref := so.Ref(int(e.slot)); ref != objmodel.Nil &&
			r.Table.Get(ref).Space == objmodel.SpaceObserver {
			r.remember(&r.remObserver, e.src, int(e.slot))
		}
	}
	for _, id := range promoted {
		o := r.Table.Get(id)
		for i := 0; i < o.NumRefs(); i++ {
			if ref := o.Ref(i); ref != objmodel.Nil &&
				r.Table.Get(ref).Space == objmodel.SpaceObserver {
				r.remember(&r.remObserver, id, i)
			}
		}
	}
}

// collectFull runs a full-heap collection: trace and mark the whole
// graph (writing mark metadata — to DRAM under MDO, to the portion's
// metadata region otherwise), evacuate the young spaces, relocate
// written large PCM objects to DRAM (KG-W's LOO), then sweep the
// mark-region and large spaces, releasing empty chunks for recycling.
func (r *Runtime) collectFull() {
	if r.gcActive {
		return
	}
	defer r.gcEnter()()
	r.Stats.FullGCs++
	r.epoch++

	t := &tracer{r: r, accept: func(o *objmodel.Object) bool { return true }}
	r.scanRoots(t)
	t.drain(isYoung)

	// Mark metadata writes for mature/large objects.
	for _, id := range t.reached {
		o := r.Table.Get(id)
		switch o.Space {
		case objmodel.SpaceMatureDRAM, objmodel.SpaceMaturePCM,
			objmodel.SpaceLargeDRAM, objmodel.SpaceLargePCM:
			r.markWrite(o)
		}
	}

	// Young evacuation, observer residents first.
	var nurseryReached, observerReached []objmodel.ObjID
	for _, id := range t.reached {
		switch r.Table.Get(id).Space {
		case objmodel.SpaceNursery:
			nurseryReached = append(nurseryReached, id)
		case objmodel.SpaceObserver:
			observerReached = append(observerReached, id)
		}
	}
	for _, id := range observerReached {
		r.dispatchObserver(id)
	}
	for _, id := range r.observerObjs {
		if o := r.Table.Get(id); o.Addr != 0 && o.Space == objmodel.SpaceObserver {
			r.Table.Free(id)
		}
	}
	r.observerObjs = r.observerObjs[:0]
	if r.observer != nil {
		r.observer.Reset()
	}
	for _, id := range nurseryReached {
		r.promoteNursery(id)
	}
	for _, id := range r.nurseryObjs {
		if o := r.Table.Get(id); o.Addr != 0 && o.Space == objmodel.SpaceNursery {
			r.Table.Free(id)
		}
	}
	r.nurseryObjs = r.nurseryObjs[:0]
	r.nursery.Reset()

	// KG-W Large Object Optimization, collector half: move written
	// large PCM objects to the DRAM large space.
	if r.Plan.LOO && r.Plan.Monitor && r.largeDRAM != nil {
		for _, id := range r.matureObjs {
			o := r.Table.Get(id)
			if o.Addr != 0 && o.Space == objmodel.SpaceLargePCM &&
				o.Marked(r.epoch) && o.Flags&objmodel.FlagWritten != 0 {
				r.Stats.LargeRelocBytes += uint64(o.Size)
				r.copyChunked(o, r.largeDRAM, objmodel.SpaceLargeDRAM)
				o.Flags &^= objmodel.FlagWritten
			}
		}
	}

	r.sweep()
	r.rebuildRemsets()
	// Re-derive the paper's 2x-minimum heap sizing from the live set.
	if live := 2 * r.matureUsed(); live > r.Plan.HeapBytes {
		r.dynBudget = live
	}
	if r.Safepoint != nil {
		r.Safepoint()
	}
}

// markWrite charges the mark metadata writes for one live object:
// per-line mark bytes for mark-region spaces, one mark byte for
// large-object spaces. Under MDO the metadata of PCM-portion objects
// lives in the DRAM-bound shadow region.
func (r *Runtime) markWrite(o *objmodel.Object) {
	var bytes int
	switch o.Space {
	case objmodel.SpaceMatureDRAM, objmodel.SpaceMaturePCM:
		bytes = int((uint64(o.Size) + heap.LineBytes - 1) / heap.LineBytes)
	default:
		bytes = 1
	}
	var meta uint64
	if r.Layout.PCMPortion(o.Addr) && r.Plan.MDO {
		meta = r.Layout.MarkByteAddrMDO(o.Addr)
	} else {
		meta = r.Layout.MarkByteAddr(o.Addr)
	}
	r.Proc.Access(meta, bytes, true)
}

// sweep rebuilds granule occupancy from live objects, frees dead
// records, charges the line-mark scans, and releases empty chunks.
func (r *Runtime) sweep() {
	spaces := []*heap.ChunkedSpace{r.maturePCM, r.largePCM}
	if r.matureDRAM != nil {
		spaces = append(spaces, r.matureDRAM, r.largeDRAM)
	}
	spaceFor := func(id objmodel.SpaceID) *heap.ChunkedSpace {
		switch id {
		case objmodel.SpaceMaturePCM:
			return r.maturePCM
		case objmodel.SpaceMatureDRAM:
			return r.matureDRAM
		case objmodel.SpaceLargePCM:
			return r.largePCM
		case objmodel.SpaceLargeDRAM:
			return r.largeDRAM
		}
		return nil
	}

	// The sweep reads the line-mark metadata of every chunk.
	for _, s := range spaces {
		for _, chunk := range s.ChunkAddrs() {
			meta := r.Layout.MarkByteAddr(chunk)
			if r.Layout.PCMPortion(chunk) && r.Plan.MDO {
				meta = r.Layout.MarkByteAddrMDO(chunk)
			}
			r.Proc.AccessLines(meta, int(heap.ChunkBytes/heap.MarkGranule/64), false)
		}
		s.SweepPrepare()
	}

	live := r.matureObjs[:0]
	for _, id := range r.matureObjs {
		o := r.Table.Get(id)
		if o.Addr == 0 {
			continue
		}
		if o.Marked(r.epoch) {
			spaceFor(o.Space).SweepMark(o.Addr, uint64(o.Size))
			live = append(live, id)
		} else {
			r.Table.Free(id)
		}
	}
	r.matureObjs = live
	for _, s := range spaces {
		s.SweepFinish()
	}
}

// rebuildRemsets reconstructs the remembered sets precisely after a
// full-heap trace (the trace visited every live reference anyway; no
// extra memory traffic is charged beyond the SSB writes).
func (r *Runtime) rebuildRemsets() {
	r.remNursery = r.remNursery[:0]
	r.remObserver = r.remObserver[:0]
	if !r.Plan.UseObserver {
		return
	}
	for _, id := range r.matureObjs {
		o := r.Table.Get(id)
		for i := 0; i < o.NumRefs(); i++ {
			if ref := o.Ref(i); ref != objmodel.Nil &&
				r.Table.Get(ref).Space == objmodel.SpaceObserver {
				r.remember(&r.remObserver, id, i)
			}
		}
	}
}
