package hybridmem

import (
	"context"
	"reflect"
	"testing"
)

// TestSweepSpecsDefaults pins the documented defaults: each empty
// dimension expands to the full registry, all eight collectors, one
// instance, and the default dataset.
func TestSweepSpecsDefaults(t *testing.T) {
	specs := NewSweep("pmd").Specs()
	if len(specs) != len(Collectors()) {
		t.Fatalf("one-app default sweep = %d specs, want %d", len(specs), len(Collectors()))
	}
	for i, spec := range specs {
		if spec.Collector != Collectors()[i] {
			t.Errorf("spec %d collector = %v, want the paper order %v", i, spec.Collector, Collectors()[i])
		}
		if spec.Instances != 1 || spec.Dataset != Default || spec.Native {
			t.Errorf("spec %d defaults wrong: %+v", i, spec)
		}
	}
	if n := len(NewSweep().Collectors(KGW).Specs()); n != len(Apps()) {
		t.Errorf("no-app sweep = %d specs, want the %d-benchmark registry", n, len(Apps()))
	}
}

// TestSweepSpecsRepeatedEntries checks repeats are preserved in order,
// not deduplicated: a caller sweeping (1, 1, 2) instances gets three
// aligned result columns.
func TestSweepSpecsRepeatedEntries(t *testing.T) {
	specs := NewSweep("pmd", "pmd").Collectors(KGW).Instances(1, 1, 2).Specs()
	if len(specs) != 2*3 {
		t.Fatalf("sweep size = %d, want 6", len(specs))
	}
	wantInstances := []int{1, 1, 2, 1, 1, 2}
	for i, spec := range specs {
		if spec.AppName != "pmd" || spec.Instances != wantInstances[i] {
			t.Errorf("spec %d = %+v, want pmd x%d", i, spec, wantInstances[i])
		}
	}
	if !reflect.DeepEqual(specs[0], specs[1]) {
		t.Error("repeated entries must expand to identical specs")
	}
}

// TestSweepNativeAlignment checks Specs()[i] ↔ RunSweep result
// alignment under Native(): the collector dimension collapses and
// every result matches a direct Run of the same indexed spec.
func TestSweepNativeAlignment(t *testing.T) {
	p := New(WithScale(Quick))
	ctx := context.Background()
	sweep := NewSweep("PR", "CC").Collectors(KGW, KGN).Instances(1, 2).Native()
	specs := sweep.Specs()
	// Native collapses collectors: 2 apps x 1 x 2 instances.
	if len(specs) != 4 {
		t.Fatalf("native sweep = %d specs, want 4", len(specs))
	}
	for i, spec := range specs {
		if !spec.Native || spec.Collector != 0 {
			t.Errorf("spec %d = %+v, want native with collapsed collector", i, spec)
		}
	}
	results, err := p.RunSweep(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(specs) {
		t.Fatalf("RunSweep returned %d results for %d specs", len(results), len(specs))
	}
	for i, spec := range specs {
		direct, err := p.Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(results[i], direct) {
			t.Errorf("results[%d] does not equal Run(Specs()[%d])", i, i)
		}
		if len(direct.NativeStats) != spec.Instances {
			t.Errorf("spec %d: %d native stats for %d instances", i, len(direct.NativeStats), spec.Instances)
		}
	}
}
