package graphchi

import (
	"testing"

	"repro/internal/jvm"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/native"
	"repro/internal/workloads"
)

const testEdges = 60_000

func newMachine() *machine.Machine {
	cfg := machine.DefaultConfig()
	cfg.NodeBytes = 2 << 30
	return machine.New(cfg)
}

func runManaged(t *testing.T, app workloads.App, kind jvm.Kind) (*machine.Machine, jvm.Stats) {
	t.Helper()
	m := newMachine()
	k := kernel.New(m, kernel.Config{EmulateOS: false})
	var stats jvm.Stats
	plan := jvm.NewPlan(kind, jvm.PlanConfig{
		BaseNurseryBytes: 256 << 10,
		HeapBytes:        24 << 20,
		BootBytes:        1 << 20,
		ThreadSocket:     -1,
	})
	proc := k.NewProcess("java", plan.ThreadSocket, func(pr *kernel.Process) {
		rt, err := jvm.NewRuntime(pr, plan)
		if err != nil {
			panic(err)
		}
		app.Run(&workloads.ManagedEnv{R: rt}, workloads.Default, 1)
		stats = rt.Stats
	})
	if err := k.RunSolo(proc, kernel.RunConfig{}); err != nil {
		t.Fatal(err)
	}
	return m, stats
}

func runNative(t *testing.T, app workloads.App) (*machine.Machine, native.Stats, int) {
	t.Helper()
	m := newMachine()
	k := kernel.New(m, kernel.Config{EmulateOS: false})
	var stats native.Stats
	var live int
	proc := k.NewProcess("cpp", 1, func(pr *kernel.Process) {
		rt, err := native.NewRuntime(pr, 512<<20, 1)
		if err != nil {
			panic(err)
		}
		app.Run(&workloads.NativeEnv{R: rt}, workloads.Default, 1)
		stats = rt.Stats
		live = rt.LiveBlocks()
	})
	if err := k.RunSolo(proc, kernel.RunConfig{}); err != nil {
		t.Fatal(err)
	}
	return m, stats, live
}

func TestKindStrings(t *testing.T) {
	if PR.String() != "PR" || CC.String() != "CC" || ALS.String() != "ALS" {
		t.Error("kind names wrong")
	}
}

func TestAppMetadata(t *testing.T) {
	for _, a := range All() {
		if a.Suite() != workloads.GraphChi {
			t.Errorf("%s suite = %v", a.Name(), a.Suite())
		}
		if a.NurseryMB() != 32 {
			t.Errorf("%s nursery = %d, want 32 (paper's GraphChi choice)", a.Name(), a.NurseryMB())
		}
		if !a.HasLargeDataset() {
			t.Errorf("%s must have a large dataset", a.Name())
		}
	}
}

func TestGraphGeneratorDeterminism(t *testing.T) {
	a := buildGraph(testEdges, 99, true, 8192, 8192)
	b := buildGraph(testEdges, 99, true, 8192, 8192)
	if a.srcVerts != b.srcVerts || a.numShard != b.numShard {
		t.Fatal("graph geometry not deterministic")
	}
	for s := range a.shards {
		if len(a.shards[s]) != len(b.shards[s]) {
			t.Fatal("shard sizes not deterministic")
		}
		for i := range a.shards[s] {
			if a.shards[s][i] != b.shards[s][i] {
				t.Fatal("edges not deterministic")
			}
		}
	}
	total := 0
	for _, s := range a.shards {
		total += len(s)
	}
	if total != testEdges {
		t.Errorf("sharded edges = %d, want %d", total, testEdges)
	}
}

func TestGraphSkew(t *testing.T) {
	// RMAT graphs are skewed: the max out-degree should far exceed
	// the mean.
	g := buildGraph(testEdges, 7, false, 8192, 8192)
	var max uint32
	for _, d := range g.outDeg {
		if d > max {
			max = d
		}
	}
	mean := float64(testEdges) / float64(g.srcVerts)
	if float64(max) < 8*mean {
		t.Errorf("degree skew too weak: max %d vs mean %.1f", max, mean)
	}
}

func TestPageRankRuns(t *testing.T) {
	app := NewWithEdges(PR, testEdges)
	_, stats := runManaged(t, app, jvm.KGN)
	if stats.AllocBytes == 0 || stats.MinorGCs == 0 {
		t.Errorf("PR stats: %+v", stats)
	}
	// Ranks must be a probability-ish distribution: positive sum.
	var sum float64
	for _, r := range app.ranks {
		if r < 0 {
			t.Fatal("negative rank")
		}
		sum += r
	}
	if sum <= 0.5 || sum > 1.5 {
		t.Errorf("rank mass = %v, want ~1", sum)
	}
}

func TestCCConverges(t *testing.T) {
	app := NewWithEdges(CC, testEdges)
	_, _ = runManaged(t, app, jvm.KGN)
	// Label propagation only lowers labels.
	for v, l := range app.labels {
		if int(l) > v {
			t.Fatalf("label[%d] = %d rose above its vertex id", v, l)
		}
	}
}

func TestALSRuns(t *testing.T) {
	app := NewWithEdges(ALS, testEdges)
	_, stats := runManaged(t, app, jvm.KGN)
	if stats.LargeAllocBytes == 0 && stats.AllocBytes == 0 {
		t.Error("ALS allocated nothing")
	}
}

func TestJavaAllocatesMoreThanCpp(t *testing.T) {
	// Fig 3's allocation comparison: the managed version allocates
	// more than C++ (boxing temporaries), within 1.1x-3x.
	for _, kind := range []Kind{PR, CC, ALS} {
		_, jstats := runManaged(t, NewWithEdges(kind, testEdges), jvm.PCMOnly)
		_, cstats, _ := runNative(t, NewWithEdges(kind, testEdges))
		ratio := float64(jstats.AllocBytes) / float64(cstats.AllocBytes)
		if ratio <= 1.05 {
			t.Errorf("%v: Java/C++ allocation ratio %.2f, want > 1.05", kind, ratio)
		}
		if ratio > 4 {
			t.Errorf("%v: Java/C++ allocation ratio %.2f implausibly high", kind, ratio)
		}
	}
}

func TestNativeVersionFreesBuffers(t *testing.T) {
	_, stats, live := runNative(t, NewWithEdges(PR, testEdges))
	if stats.Frees == 0 {
		t.Error("C++ version must free its shard buffers")
	}
	// Only vertex arrays may remain at iteration end... and they are
	// released too, so everything must be freed.
	if live != 0 {
		t.Errorf("C++ version leaked %d blocks", live)
	}
}

func TestShardBuffersAreLargeObjects(t *testing.T) {
	app := NewWithEdges(PR, testEdges)
	_, stats := runManaged(t, app, jvm.KGN) // no LOO: larges go to PCM LOS
	if stats.LargeAllocBytes == 0 {
		t.Error("shard buffers must follow the large-object policy")
	}
}
