// Package workloads defines the benchmark framework of the evaluation:
// the Env interface applications program against (implemented by both
// the managed JVM runtime and the native malloc runtime), the App
// interface, and the deterministic random streams the synthetic
// workloads draw from.
//
// The paper's benchmarks are real Java programs; this reproduction
// models the DaCapo and Pjbb applications as calibrated
// allocation/mutation profiles (their memory behaviour is what the
// evaluation depends on), while the GraphChi applications are real
// algorithm implementations (PageRank, Connected Components, ALS)
// running over synthetic graphs, so their access patterns are emergent.
package workloads

import "fmt"

// Suite identifies a benchmark family.
type Suite int

const (
	// DaCapo is the 11-application DaCapo subset used by the paper
	// (including the lu.Fix and pmd.S variants).
	DaCapo Suite = iota
	// Pjbb is pseudojbb2005.
	Pjbb
	// GraphChi is the graph-processing suite (PR, CC, ALS).
	GraphChi
)

// String names the suite as the paper does.
func (s Suite) String() string {
	switch s {
	case DaCapo:
		return "DaCapo"
	case Pjbb:
		return "Pjbb"
	case GraphChi:
		return "GraphChi"
	default:
		return fmt.Sprintf("Suite(%d)", int(s))
	}
}

// Dataset selects the input size.
type Dataset int

const (
	// Default is the paper's default dataset (e.g. 1 M edges).
	Default Dataset = iota
	// Large is the large dataset (e.g. 10 M edges).
	Large
)

// String names the dataset.
func (d Dataset) String() string {
	if d == Large {
		return "large"
	}
	return "default"
}

// Ref is an opaque object handle: a managed object ID or a native
// payload address, depending on the Env.
type Ref uint64

// NilRef is the null handle.
const NilRef Ref = 0

// Env is the memory system an application runs against. The managed
// implementation maintains a real object graph with GC liveness; the
// native implementation is a malloc heap where roots and reference
// writes degrade to plain pointer stores.
type Env interface {
	// Managed reports whether this is the garbage-collected runtime.
	Managed() bool
	// Alloc allocates an object with nrefs reference slots. The
	// managed runtime zero-initializes; the native one does not.
	Alloc(size, nrefs int) Ref
	// Free releases a native allocation; it is a no-op when managed.
	Free(ref Ref)
	// Write stores size bytes at offset off of ref.
	Write(ref Ref, off, size int)
	// Read loads size bytes at offset off of ref.
	Read(ref Ref, off, size int)
	// WriteRef stores a reference (with write barrier when managed).
	WriteRef(src Ref, slot int, dst Ref)
	// ReadRef loads a reference slot (managed graphs only; native
	// returns NilRef).
	ReadRef(src Ref, slot int) Ref
	// AddRoot pins ref as a GC root and returns a slot handle.
	AddRoot(ref Ref) int
	// SetRoot repoints a root slot.
	SetRoot(slot int, ref Ref)
	// DropRoot releases a root slot.
	DropRoot(slot int)
	// Compute burns n compute units (the non-memory instruction mix).
	Compute(n int)
}

// App is one benchmark application. Run executes a single iteration
// of the workload (the replay harness calls it twice: warmup, then the
// measured iteration). Implementations may keep state across
// iterations (long-lived structures survive, as in the real apps), so
// an App instance must not be shared between program instances.
type App interface {
	Name() string
	Suite() Suite
	// NurseryMB is the paper's per-suite nursery: 4 MB for DaCapo and
	// Pjbb, 32 MB for GraphChi.
	NurseryMB() int
	// HeapMB is the mature-heap budget (twice the minimum heap).
	HeapMB() int
	// HasLargeDataset reports whether a large input exists (Fig 8).
	HasLargeDataset() bool
	Run(env Env, ds Dataset, seed uint64)
}

// RNG is a deterministic splitmix64 stream. Workloads never touch
// global randomness, so every run is reproducible.
type RNG struct{ state uint64 }

// NewRNG seeds a stream.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed ^ 0x9E3779B97F4A7C15} }

// Next returns the next 64-bit value.
func (r *RNG) Next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a value in [0, n).
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Next() % uint64(n))
}

// Float returns a value in [0, 1).
func (r *RNG) Float() float64 {
	return float64(r.Next()>>11) / float64(1<<53)
}

// SizeAround draws an approximately exponential size with the given
// mean, clamped to [16, cap].
func (r *RNG) SizeAround(mean, cap int) int {
	// Sum of two uniforms approximates the mid-weighted spread real
	// object-size histograms show.
	v := (r.Intn(mean) + r.Intn(mean+mean/2)) * 4 / 5
	if v < 16 {
		v = 16
	}
	if v > cap {
		v = cap
	}
	return v
}
