// Package graphchi implements a GraphChi-style out-of-core graph
// engine and the three applications the paper evaluates: PageRank
// (PR), Connected Components (CC), and ALS matrix factorization (ALS).
//
// Unlike the DaCapo/Pjbb profiles, these are real algorithm
// implementations: the engine shards a synthetic RMAT graph (the
// LiveJournal stand-in; a ratings matrix stands in for the Netflix
// training set), streams one shard buffer at a time (allocate, load,
// process, release — the short-lived large objects at the heart of the
// paper's LOO analysis), and maintains per-vertex state in segmented
// large arrays. The Java-version behaviours the paper measures are
// modelled faithfully: allocation is zero-initialized by the managed
// runtime, per-edge processing allocates boxing temporaries (tuned so
// Java allocates 1.34x/1.6x/2x the C++ volume for PR/CC/ALS), and the
// C++ version frees its buffers manually and never zeroes.
//
// The paper's defaults: 1 M edges (PR, CC) and 1 M ratings (ALS);
// large datasets are 10 M. Nursery 32 MB (the paper found 4 MB hurts
// GraphChi), heap twice the minimum.
package graphchi

import (
	"fmt"

	"repro/internal/workloads"
)

// Kind selects the vertex program.
type Kind int

const (
	// PR is PageRank.
	PR Kind = iota
	// CC is connected components by label propagation.
	CC
	// ALS is alternating-least-squares matrix factorization.
	ALS
)

// String returns the paper's abbreviation.
func (k Kind) String() string {
	switch k {
	case PR:
		return "PR"
	case CC:
		return "CC"
	case ALS:
		return "ALS"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Dataset scale: the paper's default and large inputs.
const (
	defaultEdges = 1_000_000
	largeEdges   = 10_000_000
	// ljVertexSpace is the LiveJournal vertex-id space: GraphChi sizes
	// its per-vertex arrays by the graph's id space, not by the number
	// of vertices an edge sample happens to touch, so even the 1M-edge
	// default input carries tens of megabytes of vertex state — the
	// LLC-overflowing footprint behind GraphChi's high PCM write
	// rates (for both the C++ and Java versions).
	ljVertexSpace = 4_800_000
	// Netflix-shaped rating matrix for ALS.
	nfUserSpace = 480_000
	nfItemRatio = 27
	// segVerts is the number of vertices per value-array segment
	// (segments are large objects in the managed heap).
	segVerts = 32768
	// shardTargetBytes sizes the streamed edge buffers (~1 MB, the
	// short-lived large objects LOO targets).
	shardTargetBytes = 1 << 20
	// alsFactors is the ALS latent dimension.
	alsFactors = 8
)

type edge struct{ src, dst uint32 }

// graph is the Go-side dataset: sharded edges plus degrees. The
// charged memory traffic flows through the Env; this struct is the
// algorithm's view of the input, standing in for the on-disk shards.
type graph struct {
	srcVerts int // source id space (users for ALS)
	dstVerts int // destination id space (items for ALS)
	edges    int
	shards   [][]edge // grouped by destination range
	bySrc    [][]edge // grouped by source range (ALS second sweep)
	outDeg   []uint32
	numShard int
}

// vertsFor sizes the vertex id space of an edge sample: sparse samples
// of a social graph span roughly four ids per edge, capped by the
// graph's full id space (denser samples reuse vertices, which is why
// the paper's 10M-edge inputs lower the write rate per edge).
func vertsFor(edges int) int {
	v := 4 * edges
	if v > ljVertexSpace {
		v = ljVertexSpace
	}
	if v < 1024 {
		v = 1024
	}
	return v
}

// buildGraph deterministically generates an RMAT-skewed edge list over
// a (srcVerts x dstVerts) id grid and shards it by destination (and,
// when wantSrc is set, by source for ALS's user sweep).
func buildGraph(edges int, seed uint64, wantSrc bool, srcVerts, dstVerts int) *graph {
	g := &graph{srcVerts: srcVerts, dstVerts: dstVerts, edges: edges}
	g.numShard = (edges*8 + shardTargetBytes - 1) / shardTargetBytes
	if g.numShard < 4 {
		g.numShard = 4
	}
	g.shards = make([][]edge, g.numShard)
	g.bySrc = make([][]edge, g.numShard)
	g.outDeg = make([]uint32, srcVerts)

	rng := workloads.NewRNG(seed)
	rmat := func(verts int) uint32 {
		// Power-of-two grid for the RMAT recursion. The 0.72 per-bit
		// bias yields the heavy-tailed degree distribution of social
		// graphs like LiveJournal.
		dim := 1
		for dim < verts {
			dim <<= 1
		}
		v := 0
		for bit := dim >> 1; bit > 0; bit >>= 1 {
			if rng.Float() < 0.72 {
				continue
			}
			v |= bit
		}
		return uint32(v % verts)
	}
	shardOf := func(v uint32) int {
		s := int(uint64(v) * uint64(g.numShard) / uint64(g.dstVerts))
		if s >= g.numShard {
			s = g.numShard - 1
		}
		return s
	}
	srcShardOf := func(v uint32) int {
		s := int(uint64(v) * uint64(g.numShard) / uint64(g.srcVerts))
		if s >= g.numShard {
			s = g.numShard - 1
		}
		return s
	}
	for i := 0; i < edges; i++ {
		e := edge{src: rmat(srcVerts), dst: rmat(dstVerts)}
		g.shards[shardOf(e.dst)] = append(g.shards[shardOf(e.dst)], e)
		if wantSrc {
			g.bySrc[srcShardOf(e.src)] = append(g.bySrc[srcShardOf(e.src)], e)
		}
		g.outDeg[e.src]++
	}
	return g
}

// pageCache models the OS file cache backing the on-disk shards: a
// persistent, read-mostly region the engine streams through on every
// shard load. Its footprint is the file size, so shard loading evicts
// dirty lines from the LLC — for the C++ engine just as for the JVM.
type pageCache struct {
	segs  []workloads.Ref
	slots []int
	bytes int
}

func newPageCache(env workloads.Env, bytes int) *pageCache {
	pc := &pageCache{bytes: bytes}
	const seg = 2 << 20
	for off := 0; off < bytes; off += seg {
		n := seg
		if bytes-off < n {
			n = bytes - off
		}
		ref := env.Alloc(n+16, 0)
		pc.segs = append(pc.segs, ref)
		pc.slots = append(pc.slots, env.AddRoot(ref))
	}
	return pc
}

// stream reads n bytes starting at off, 4 KB at a time.
func (pc *pageCache) stream(env workloads.Env, off, n int) {
	const seg = 2 << 20
	for r := 0; r < n; r += 4096 {
		pos := (off + r) % pc.bytes
		chunk := 4096
		if rem := n - r; rem < chunk {
			chunk = rem
		}
		if segRem := seg - pos%seg; segRem < chunk {
			chunk = segRem
		}
		env.Read(pc.segs[pos/seg], 16+pos%seg, chunk)
	}
}

// writeback writes n bytes of updated edge values starting at off —
// GraphChi propagates values along edges, so every iteration rewrites
// the shard files through the page cache (a major write source for
// the C++ engine as much as for the JVM).
func (pc *pageCache) writeback(env workloads.Env, off, n int) {
	const seg = 2 << 20
	for r := 0; r < n; r += 4096 {
		pos := (off + r) % pc.bytes
		chunk := 4096
		if rem := n - r; rem < chunk {
			chunk = rem
		}
		if segRem := seg - pos%seg; segRem < chunk {
			chunk = segRem
		}
		env.Write(pc.segs[pos/seg], 16+pos%seg, chunk)
	}
}

func (pc *pageCache) release(env workloads.Env) {
	for i, s := range pc.slots {
		env.SetRoot(s, workloads.NilRef)
		env.DropRoot(s)
		if !env.Managed() {
			env.Free(pc.segs[i])
		}
	}
}

// App is one GraphChi application instance.
type App struct {
	kind Kind
	// edgesOverride shrinks the dataset for tests and examples
	// (0 = the paper's sizes); largeFactor overrides the 10x
	// large-dataset multiplier.
	edgesOverride int
	largeFactor   int

	g      *graph
	ds     workloads.Dataset
	ranks  []float64
	accum  []float64
	labels []uint32
	// edgeFileBytes is the size of the edge-data region of the page
	// cache; the vertex-data file follows it.
	edgeFileBytes int
	// per-edge boxing cadence, tuned per app so the managed version
	// allocates the paper's 1.34x/1.6x/2x of the C++ volume.
	tempEvery int
	tempBytes int
	// per-edge compute units (sets the write rate).
	edgeCompute int
	iters       int
}

var _ workloads.App = (*App)(nil)

// New returns a fresh application instance.
func New(kind Kind) *App {
	a := &App{kind: kind}
	switch kind {
	case PR:
		a.tempEvery, a.tempBytes, a.edgeCompute, a.iters = 1, 24, 26, 3
	case CC:
		a.tempEvery, a.tempBytes, a.edgeCompute, a.iters = 1, 24, 20, 5
	case ALS:
		a.tempEvery, a.tempBytes, a.edgeCompute, a.iters = 1, 40, 120, 2
	}
	return a
}

// Name returns the paper's benchmark name.
func (a *App) Name() string { return a.kind.String() }

// Suite returns GraphChi.
func (a *App) Suite() workloads.Suite { return workloads.GraphChi }

// NurseryMB is 32 (the paper's choice for GraphChi).
func (a *App) NurseryMB() int { return 32 }

// HeapMB is the mature budget; GraphChi's interval buffers make it
// churn-heavy, and the paper notes it performs full-heap collections
// more often than DaCapo.
func (a *App) HeapMB() int {
	switch a.kind {
	case ALS:
		return 96
	case CC:
		return 64
	default:
		return 80
	}
}

// HasLargeDataset reports true: the 10 M edge/rating inputs.
func (a *App) HasLargeDataset() bool { return true }

// NewWithEdges returns an instance over a custom edge count, for
// tests and examples that cannot afford the paper-scale inputs.
func NewWithEdges(kind Kind, edges int) *App {
	a := New(kind)
	a.edgesOverride = edges
	return a
}

// NewWithEdgesAndLarge additionally overrides the large-dataset
// multiplier (the paper's is 10x).
func NewWithEdgesAndLarge(kind Kind, edges, largeFactor int) *App {
	a := NewWithEdges(kind, edges)
	a.largeFactor = largeFactor
	return a
}

// edgeCount returns the dataset size.
func (a *App) edgeCount(ds workloads.Dataset) int {
	if a.edgesOverride > 0 {
		f := a.largeFactor
		if f <= 0 {
			f = 10
		}
		if ds == workloads.Large {
			return a.edgesOverride * f
		}
		return a.edgesOverride
	}
	if ds == workloads.Large {
		return largeEdges
	}
	return defaultEdges
}

// Run executes one full execution of the vertex program over the
// sharded graph.
func (a *App) Run(env workloads.Env, ds workloads.Dataset, seed uint64) {
	if a.g == nil || a.ds != ds {
		edges := a.edgeCount(ds)
		if a.kind == ALS {
			users := edges / 2
			if users > nfUserSpace {
				users = nfUserSpace
			}
			if users < 1024 {
				users = 1024
			}
			items := users / nfItemRatio
			if items < 1024 {
				items = 1024
			}
			a.g = buildGraph(edges, 0xC0FFEE+uint64(a.kind)*7, true, users, items)
		} else {
			v := vertsFor(edges)
			a.g = buildGraph(edges, 0xC0FFEE+uint64(a.kind)*7, false, v, v)
		}
		a.ds = ds
	}
	// The page cache backing the shard files (edge data followed by
	// vertex data) persists for the whole execution — the OS keeps the
	// files resident across iterations. Both engines stream and
	// rewrite these files every iteration, which is where the C++
	// version's memory writes come from.
	a.edgeFileBytes = a.g.edges*8 + 4096
	elemB := 16
	switch a.kind {
	case CC:
		elemB = 8
	case ALS:
		elemB = alsFactors * 8
	}
	nVerts := a.g.dstVerts
	if a.g.srcVerts > nVerts {
		nVerts = a.g.srcVerts
	}
	pc := newPageCache(env, a.edgeFileBytes+nVerts*elemB+4096)
	defer pc.release(env)
	switch a.kind {
	case PR:
		a.runPageRank(env, pc)
	case CC:
		a.runCC(env, pc)
	case ALS:
		a.runALS(env, pc)
	}
}

// interval is one shard execution. The engine loads the shard's edges
// from the page cache into a buffer, materializes the interval's
// vertex state, hands every edge to process, writes the updated edge
// values back through the page cache, and releases everything.
//
// The two language implementations differ exactly as the paper
// describes: the Java engine materializes the interval as per-vertex
// objects (grouped a cache line at a time here), zero-initialized and
// allocated in the nursery — the fresh-allocation churn that KG-N
// captures in DRAM — plus per-edge iterator/boxing temporaries; the
// C++ engine uses flat malloc'd arrays that are reused LIFO across
// intervals and never zeroed.
func (a *App) interval(env workloads.Env, pc *pageCache, shard []edge, shardIdx, vertsInBlock, vertexElemB int,
	process func(i int, e edge, touchBlock func(v int, write bool))) {
	if len(shard) == 0 {
		return
	}
	// RMAT skew can concentrate a large share of the edges in one
	// destination range; split oversized shards into sub-intervals so
	// every edge buffer stays an allocatable large object (GraphChi
	// likewise subdivides intervals to fit its memory budget).
	const maxShardEdges = (3 << 20) / 8
	for len(shard) > maxShardEdges {
		a.interval(env, pc, shard[:maxShardEdges], shardIdx, vertsInBlock, vertexElemB, process)
		shard = shard[maxShardEdges:]
	}
	bufBytes := len(shard)*8 + 16
	buf := env.Alloc(bufBytes, 0)
	bufSlot := env.AddRoot(buf)

	// Vertex state for the interval.
	const groupVerts = 16 // vertices per ChiVertex group object
	var groups []workloads.Ref
	var groupSlots []int
	var blocks []workloads.Ref
	var blockSlots []int
	const segB = 2 << 20
	blockBytes := vertsInBlock * vertexElemB
	if env.Managed() {
		n := (vertsInBlock + groupVerts - 1) / groupVerts
		groups = make([]workloads.Ref, n)
		groupSlots = make([]int, n)
		for i := range groups {
			groups[i] = env.Alloc(groupVerts*vertexElemB+16, 1)
			groupSlots[i] = env.AddRoot(groups[i])
		}
	} else {
		nseg := (blockBytes + segB - 1) / segB
		blocks = make([]workloads.Ref, nseg)
		blockSlots = make([]int, nseg)
		for i := 0; i < nseg; i++ {
			n := segB
			if rem := blockBytes - i*segB; rem < n {
				n = rem
			}
			blocks[i] = env.Alloc(n+16, 0)
			blockSlots[i] = env.AddRoot(blocks[i])
		}
	}

	// Load the shard: stream the file region through the page cache
	// into the edge buffer.
	pc.stream(env, shardIdx*bufBytes, bufBytes-16)
	for off := 0; off < bufBytes; off += 4096 {
		n := bufBytes - off
		if n > 4096 {
			n = 4096
		}
		env.Write(buf, off, n)
	}

	touch := func(v int, write bool) {
		vv := v % vertsInBlock
		if env.Managed() {
			g := groups[vv/groupVerts]
			off := 16 + (vv%groupVerts)*vertexElemB
			if write {
				env.Write(g, off, vertexElemB)
			} else {
				env.Read(g, off, vertexElemB)
			}
			return
		}
		off := vv * vertexElemB
		ref := blocks[off/segB]
		if write {
			env.Write(ref, 16+off%segB, vertexElemB)
		} else {
			env.Read(ref, 16+off%segB, vertexElemB)
		}
	}
	temps := 0
	for i, e := range shard {
		env.Read(buf, 16+(i*8)%(bufBytes-16), 8)
		process(i, e, touch)
		temps++
		if env.Managed() && temps%a.tempEvery == 0 {
			env.Alloc(a.tempBytes, 1) // iterator/boxing garbage
		}
		env.Compute(a.edgeCompute)
	}

	// Write the interval's updated edge values and vertex data back to
	// the shard and vertex files through the page cache.
	pc.writeback(env, shardIdx*bufBytes, (bufBytes-16)/2)
	pc.writeback(env, a.edgeFileBytes+shardIdx*blockBytes, blockBytes)

	env.SetRoot(bufSlot, workloads.NilRef)
	env.DropRoot(bufSlot)
	if !env.Managed() {
		env.Free(buf)
	}
	for i := range groups {
		env.SetRoot(groupSlots[i], workloads.NilRef)
		env.DropRoot(groupSlots[i])
	}
	for i := range blocks {
		env.SetRoot(blockSlots[i], workloads.NilRef)
		env.DropRoot(blockSlots[i])
		env.Free(blocks[i])
	}
}

// runPageRank runs the classic power iteration with dangling-mass
// redistribution (edge samples leave most vertices without
// out-edges). Rank state between iterations is disk-resident (held
// Go-side); each interval materializes its vertex block in memory.
func (a *App) runPageRank(env workloads.Env, pc *pageCache) {
	g := a.g
	n := g.dstVerts
	a.ranks = make([]float64, n)
	a.accum = make([]float64, n)
	for v := range a.ranks {
		a.ranks[v] = 1 / float64(n)
	}
	blockVerts := (n + g.numShard - 1) / g.numShard
	for iter := 0; iter < a.iters; iter++ {
		for i := range a.accum {
			a.accum[i] = 0
		}
		dangling := 0.0
		for v := range a.ranks {
			if v >= len(g.outDeg) || g.outDeg[v] == 0 {
				dangling += a.ranks[v]
			}
		}
		for si, shard := range g.shards {
			a.interval(env, pc, shard, si, blockVerts, 16, func(_ int, e edge, touch func(int, bool)) {
				touch(int(e.src), false) // source rank (cached block read)
				deg := g.outDeg[e.src]
				if deg == 0 {
					deg = 1
				}
				a.accum[e.dst] += a.ranks[e.src] / float64(deg)
				touch(int(e.dst), true) // accumulate into the block
			})
		}
		for v := 0; v < n; v++ {
			a.ranks[v] = 0.15/float64(n) + 0.85*(a.accum[v]+dangling/float64(n))
		}
		env.Compute(4 * n)
	}
}

// runCC propagates minimum labels until a fixed point (bounded by the
// iteration cap). Stores shrink as labels converge, so later
// iterations write less — emergent, as in the real application.
func (a *App) runCC(env workloads.Env, pc *pageCache) {
	g := a.g
	n := g.dstVerts
	a.labels = make([]uint32, n)
	for v := range a.labels {
		a.labels[v] = uint32(v)
	}
	blockVerts := (n + g.numShard - 1) / g.numShard
	for iter := 0; iter < a.iters; iter++ {
		changed := 0
		for si, shard := range g.shards {
			a.interval(env, pc, shard, si, blockVerts, 8, func(_ int, e edge, touch func(int, bool)) {
				touch(int(e.src), false)
				if a.labels[e.src] < a.labels[e.dst] {
					a.labels[e.dst] = a.labels[e.src]
					touch(int(e.dst), true)
					changed++
				}
			})
		}
		if changed == 0 {
			break
		}
	}
}

// runALS alternates user and item least-squares sweeps over the
// ratings. Each sweep materializes the owning side's factor block per
// interval; each rating contributes a rank-one update (the block write
// traffic), and the sweep solves and writes the new factors.
func (a *App) runALS(env workloads.Env, pc *pageCache) {
	g := a.g
	userBlock := (g.srcVerts + g.numShard - 1) / g.numShard
	itemBlock := (g.dstVerts + g.numShard - 1) / g.numShard
	for sweep := 0; sweep < a.iters; sweep++ {
		// Users: group by source, read item factors, update user.
		for si, shard := range g.bySrc {
			a.interval(env, pc, shard, si, userBlock, alsFactors*8, func(_ int, e edge, touch func(int, bool)) {
				touch(int(e.dst), false) // item factor read (disk-cached)
				touch(int(e.src), true)  // user normal-equation update
			})
			env.Compute(40 * alsFactors * userBlock / g.numShard)
		}
		// Items: group by destination, read user factors, update item.
		for si, shard := range g.shards {
			a.interval(env, pc, shard, si, itemBlock, alsFactors*8, func(_ int, e edge, touch func(int, bool)) {
				touch(int(e.src), false)
				touch(int(e.dst), true)
			})
			env.Compute(40 * alsFactors * itemBlock / g.numShard)
		}
	}
}

// All returns fresh instances of the three applications.
func All() []workloads.App {
	return []workloads.App{New(PR), New(CC), New(ALS)}
}
